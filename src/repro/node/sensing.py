"""Sensing models: how a node observes the stimulus at its own position.

The paper assumes perfect binary sensing ("a sensor detects the stimulus" the
moment it is covered).  ``PerfectSensing`` implements exactly that;
``NoisySensing`` adds miss / false-alarm probabilities so the fault-injection
extension (paper future work: imperfect sensing and channels) can be studied
without touching the scheduler code.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from repro.stimulus.base import StimulusModel


class SensingModel(abc.ABC):
    """Maps ground-truth coverage to the boolean a node actually observes."""

    @abc.abstractmethod
    def sense(
        self,
        stimulus: StimulusModel,
        position: Sequence[float],
        time: float,
    ) -> bool:
        """Return the node's observation at ``position`` and ``time``."""

    def sense_many(
        self,
        stimulus: StimulusModel,
        positions: np.ndarray,
        time: float,
    ) -> np.ndarray:
        """Vectorised :meth:`sense` over an ``(n, 2)`` array of positions.

        The batch route must consume any internal randomness in exactly the
        same stream order as ``n`` scalar :meth:`sense` calls over the rows in
        order, so that the world model can switch between the scalar and
        batched paths without perturbing seeded runs.  The default simply
        loops; concrete models override with a truly vectorised path.
        """
        pts = np.asarray(positions, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ValueError(f"positions must have shape (n, 2), got {pts.shape}")
        return np.array([self.sense(stimulus, p, time) for p in pts], dtype=bool)


class PerfectSensing(SensingModel):
    """Ideal sensing: the observation equals the ground truth."""

    def sense(self, stimulus: StimulusModel, position: Sequence[float], time: float) -> bool:
        return stimulus.covers(position, time)

    def sense_many(
        self, stimulus: StimulusModel, positions: np.ndarray, time: float
    ) -> np.ndarray:
        return stimulus.covers_many(positions, time)


class NoisySensing(SensingModel):
    """Sensing with independent miss and false-alarm probabilities.

    Parameters
    ----------
    miss_probability:
        Probability a covered point is reported as uncovered.
    false_alarm_probability:
        Probability an uncovered point is reported as covered.
    rng:
        Random generator; a fresh default generator is created if omitted
        (tests should always inject one for reproducibility).
    """

    def __init__(
        self,
        miss_probability: float = 0.0,
        false_alarm_probability: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0 <= miss_probability <= 1:
            raise ValueError("miss_probability must be in [0, 1]")
        if not 0 <= false_alarm_probability <= 1:
            raise ValueError("false_alarm_probability must be in [0, 1]")
        self.miss_probability = float(miss_probability)
        self.false_alarm_probability = float(false_alarm_probability)
        self.rng = rng if rng is not None else np.random.default_rng()

    def sense(self, stimulus: StimulusModel, position: Sequence[float], time: float) -> bool:
        truth = stimulus.covers(position, time)
        if truth:
            return self.rng.random() >= self.miss_probability
        return self.rng.random() < self.false_alarm_probability

    def sense_many(
        self, stimulus: StimulusModel, positions: np.ndarray, time: float
    ) -> np.ndarray:
        """Batched noisy sensing, stream-identical to row-wise scalar calls.

        Each scalar :meth:`sense` consumes exactly one uniform draw, and a
        single ``rng.random(n)`` call consumes the identical sequence of draws
        as ``n`` scalar ``rng.random()`` calls, so seeded runs produce the
        same observations whichever route the world model takes.
        """
        pts = np.asarray(positions, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ValueError(f"positions must have shape (n, 2), got {pts.shape}")
        truth = stimulus.covers_many(pts, time)
        draws = self.rng.random(len(pts))
        return np.where(truth, draws >= self.miss_probability, draws < self.false_alarm_probability)

"""Sensor-node substrate: energy, radio, sensing, battery and the node shell.

The schedulers in :mod:`repro.core` are deliberately hardware agnostic: they
see a :class:`~repro.node.sensor.SensorNode` that exposes position, power
state, neighbour communication and a sensing hook.  Everything Telos-specific
(the power numbers of Table 1 in the paper) lives in
:class:`~repro.node.energy.TelosPowerModel`.
"""

from repro.node.energy import (
    EnergyAccount,
    EnergyBreakdown,
    PowerModel,
    TelosPowerModel,
    TELOS_POWER,
)
from repro.node.radio import RadioModel, RadioStats
from repro.node.sensing import SensingModel, PerfectSensing, NoisySensing
from repro.node.battery import Battery
from repro.node.sensor import PowerState, SensorNode

__all__ = [
    "PowerModel",
    "TelosPowerModel",
    "TELOS_POWER",
    "EnergyAccount",
    "EnergyBreakdown",
    "RadioModel",
    "RadioStats",
    "SensingModel",
    "PerfectSensing",
    "NoisySensing",
    "Battery",
    "PowerState",
    "SensorNode",
]

"""Per-node radio model: message sizes, air time, TX/RX energy and counters.

The paper charges communication energy from the Telos data rate (250 kbps)
and the TX / RX powers of Table 1.  The radio model converts messages into
byte counts, air time and energy, and keeps per-node traffic statistics that
the metrics layer aggregates.

Frame layout (loosely IEEE 802.15.4 inspired, but only the byte counts
matter):

* every frame carries ``header_bytes`` of PHY/MAC overhead,
* a REQUEST has no payload (per the paper),
* a RESPONSE carries location (2 floats), state (1 byte), estimated velocity
  (2 floats) and predicted arrival time (1 float): 41 bytes of payload with
  8-byte floats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.node.energy import EnergyAccount


@dataclass
class RadioStats:
    """Traffic counters for a single node."""

    tx_messages: int = 0
    rx_messages: int = 0
    tx_bytes: int = 0
    rx_bytes: int = 0
    dropped_rx: int = 0

    def as_dict(self) -> dict:
        """Plain dict representation for summaries."""
        return {
            "tx_messages": self.tx_messages,
            "rx_messages": self.rx_messages,
            "tx_bytes": self.tx_bytes,
            "rx_bytes": self.rx_bytes,
            "dropped_rx": self.dropped_rx,
        }


@dataclass
class RadioModel:
    """Radio interface of one node.

    Parameters
    ----------
    energy:
        The node's :class:`~repro.node.energy.EnergyAccount`, charged per frame.
    header_bytes:
        PHY + MAC overhead added to every frame.
    """

    energy: "EnergyAccount"
    header_bytes: int = 15
    stats: RadioStats = field(default_factory=RadioStats)

    def __post_init__(self) -> None:
        if self.header_bytes < 0:
            raise ValueError("header_bytes must be non-negative")

    # ----------------------------------------------------------------- sizes
    def frame_bytes(self, payload_bytes: int) -> int:
        """Total on-air size of a frame with ``payload_bytes`` of payload."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        return self.header_bytes + payload_bytes

    def air_time(self, payload_bytes: int) -> float:
        """Seconds of air time for one frame."""
        return self.energy.power.transmission_time(self.frame_bytes(payload_bytes))

    # ------------------------------------------------------------- transfers
    def transmit(self, payload_bytes: int) -> float:
        """Charge one transmission; returns the air time in seconds."""
        size = self.frame_bytes(payload_bytes)
        self.energy.add_tx(size)
        self.stats.tx_messages += 1
        self.stats.tx_bytes += size
        return self.energy.power.transmission_time(size)

    def receive(self, payload_bytes: int) -> float:
        """Charge one reception; returns the air time in seconds."""
        size = self.frame_bytes(payload_bytes)
        self.energy.add_rx(size)
        self.stats.rx_messages += 1
        self.stats.rx_bytes += size
        return self.energy.power.transmission_time(size)

    def drop(self) -> None:
        """Record a frame lost by the channel before reaching this node."""
        self.stats.dropped_rx += 1

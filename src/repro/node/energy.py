"""Power models and per-node energy accounting.

Table 1 of the paper gives the Telos (Polastre et al., IPSN'06) power figures
used by the evaluation:

==================  ==========
Quantity            Value
==================  ==========
Active power        3 mW     (MCU on, radio off)
Sleep power         15 uW
Receive power       38 mW    (radio RX)
Transition power    35 mW    (radio TX / state transition)
Data rate           250 kbps
Total active power  41 mW    (MCU active + radio RX)
==================  ==========

``TelosPowerModel`` reproduces those numbers verbatim (all converted to
watts).  ``EnergyAccount`` integrates "power x time" per component so the
metrics layer can report both the total average energy (Figs. 6 and 7) and a
breakdown by cause (MCU active, sleep, RX, TX) used in the ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class PowerModel:
    """Platform power characteristics (all in SI units: watts, bits/second).

    Attributes
    ----------
    active_power_w:
        MCU active power with the radio off.
    sleep_power_w:
        Deep-sleep power (MCU + radio off).
    receive_power_w:
        Radio receive / idle-listen power.
    transmit_power_w:
        Radio transmit power (the paper's "transition power").
    data_rate_bps:
        Radio data rate in bits per second.
    total_active_power_w:
        MCU active + radio listening; the power an awake, monitoring node
        draws continuously.
    """

    active_power_w: float
    sleep_power_w: float
    receive_power_w: float
    transmit_power_w: float
    data_rate_bps: float
    total_active_power_w: float

    def __post_init__(self) -> None:
        for name in (
            "active_power_w",
            "sleep_power_w",
            "receive_power_w",
            "transmit_power_w",
            "data_rate_bps",
            "total_active_power_w",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.sleep_power_w >= self.total_active_power_w:
            raise ValueError("sleep power must be lower than total active power")

    # ------------------------------------------------------------- transmit
    def transmission_time(self, payload_bytes: int) -> float:
        """Air time (seconds) for a payload of ``payload_bytes`` bytes."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        return payload_bytes * 8.0 / self.data_rate_bps

    def transmit_energy(self, payload_bytes: int) -> float:
        """Energy (joules) to transmit ``payload_bytes`` bytes."""
        return self.transmit_power_w * self.transmission_time(payload_bytes)

    def receive_energy(self, payload_bytes: int) -> float:
        """Energy (joules) to receive ``payload_bytes`` bytes."""
        return self.receive_power_w * self.transmission_time(payload_bytes)


class TelosPowerModel(PowerModel):
    """The Telos power figures from Table 1 of the paper."""

    def __init__(self) -> None:
        super().__init__(
            active_power_w=3e-3,
            sleep_power_w=15e-6,
            receive_power_w=38e-3,
            transmit_power_w=35e-3,
            data_rate_bps=250_000.0,
            total_active_power_w=41e-3,
        )


#: Module-level singleton for the common case.
TELOS_POWER = TelosPowerModel()


@dataclass
class EnergyBreakdown:
    """Energy split by cause, in joules."""

    active_j: float = 0.0
    sleep_j: float = 0.0
    rx_j: float = 0.0
    tx_j: float = 0.0

    @property
    def total_j(self) -> float:
        """Sum over all components."""
        return self.active_j + self.sleep_j + self.rx_j + self.tx_j

    def as_dict(self) -> Dict[str, float]:
        """Plain dict representation (for summaries / CSV export)."""
        return {
            "active_j": self.active_j,
            "sleep_j": self.sleep_j,
            "rx_j": self.rx_j,
            "tx_j": self.tx_j,
            "total_j": self.total_j,
        }


@dataclass
class EnergyAccount:
    """Per-node energy ledger.

    The node calls :meth:`add_active_time` / :meth:`add_sleep_time` whenever it
    leaves a power state (duration-based accounting), and the radio calls
    :meth:`add_tx` / :meth:`add_rx` per message.  Keeping the two kinds of
    charge separate lets the invariant tests verify that the components always
    sum to the total.
    """

    power: PowerModel = field(default_factory=TelosPowerModel)
    breakdown: EnergyBreakdown = field(default_factory=EnergyBreakdown)

    def add_active_time(self, duration_s: float) -> float:
        """Charge ``duration_s`` seconds of awake monitoring (MCU + RX listen)."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        energy = self.power.total_active_power_w * duration_s
        self.breakdown.active_j += energy
        return energy

    def add_sleep_time(self, duration_s: float) -> float:
        """Charge ``duration_s`` seconds of deep sleep."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        energy = self.power.sleep_power_w * duration_s
        self.breakdown.sleep_j += energy
        return energy

    def add_tx(self, payload_bytes: int) -> float:
        """Charge the transmission of one message of ``payload_bytes`` bytes."""
        energy = self.power.transmit_energy(payload_bytes)
        self.breakdown.tx_j += energy
        return energy

    def add_rx(self, payload_bytes: int) -> float:
        """Charge the reception of one message of ``payload_bytes`` bytes."""
        energy = self.power.receive_energy(payload_bytes)
        self.breakdown.rx_j += energy
        return energy

    @property
    def total_j(self) -> float:
        """Total energy consumed so far, in joules."""
        return self.breakdown.total_j

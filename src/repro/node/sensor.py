"""The sensor-node shell: identity, position, power state and energy ledger.

``SensorNode`` deliberately contains *no scheduling policy*: the PAS / SAS /
NS controllers in :mod:`repro.core` decide when a node sleeps and for how
long; the node only tracks which power state it is in and charges the correct
energy for the time spent there.  This split keeps the paper's contribution
(the policy) isolated from the substrate (the platform model) and lets the
same node implementation serve every scheduler in the comparison.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.geometry.vec import Vec2
from repro.node.battery import Battery
from repro.node.energy import EnergyAccount, PowerModel, TelosPowerModel
from repro.node.radio import RadioModel


class PowerState(enum.Enum):
    """Physical power state of the node hardware.

    Distinct from the *protocol* state (SAFE / ALERT / COVERED) defined by the
    PAS state machine: protocol states map onto power states (COVERED and
    ALERT nodes are AWAKE, SAFE nodes alternate AWAKE and ASLEEP), and a
    FAILED node (fault-injection extension) consumes nothing at all.
    """

    AWAKE = "awake"
    ASLEEP = "asleep"
    FAILED = "failed"


class SensorNode:
    """One deployed sensor.

    Parameters
    ----------
    node_id:
        Unique integer identifier.
    position:
        Location of the node in the monitored plane (metres).
    power_model:
        Platform power characteristics; Telos by default.
    battery:
        Optional finite battery; ``None`` models an unconstrained supply
        (the paper's experiments measure energy, not lifetime).
    """

    def __init__(
        self,
        node_id: int,
        position: Vec2,
        *,
        power_model: Optional[PowerModel] = None,
        battery: Optional[Battery] = None,
        radio_header_bytes: int = 15,
    ) -> None:
        if node_id < 0:
            raise ValueError("node_id must be non-negative")
        self.id = int(node_id)
        self.position = position
        self.energy = EnergyAccount(power=power_model or TelosPowerModel())
        self.radio = RadioModel(energy=self.energy, header_bytes=radio_header_bytes)
        self.battery = battery
        self.power_state = PowerState.AWAKE
        #: optional ``listener(node_id, new_state)`` mirror of power transitions;
        #: the world model binds this to its columnar state so awake/failed
        #: masks never have to be re-derived by scanning nodes
        self.power_listener: Optional[Callable[[int, "PowerState"], None]] = None
        #: time of the last power-state change; used to charge elapsed energy
        self._state_since = 0.0
        #: cumulative seconds spent awake / asleep (for state-occupancy metrics)
        self.awake_time_s = 0.0
        self.asleep_time_s = 0.0

    # ------------------------------------------------------------ power state
    @property
    def is_awake(self) -> bool:
        """True when the node can sense and receive."""
        return self.power_state == PowerState.AWAKE

    @property
    def is_failed(self) -> bool:
        """True once the node has been failed by fault injection or battery death."""
        return self.power_state == PowerState.FAILED

    def settle_energy(self, now: float) -> None:
        """Charge the energy for the time elapsed in the current power state.

        Must be called before every power-state change and once at the end of
        the run so the ledger covers the whole timeline.
        """
        elapsed = now - self._state_since
        if elapsed < -1e-9:
            raise ValueError(
                f"node {self.id}: settle_energy called with now={now} before "
                f"state start {self._state_since}"
            )
        elapsed = max(0.0, elapsed)
        if self.power_state == PowerState.AWAKE:
            drawn = self.energy.add_active_time(elapsed)
            self.awake_time_s += elapsed
        elif self.power_state == PowerState.ASLEEP:
            drawn = self.energy.add_sleep_time(elapsed)
            self.asleep_time_s += elapsed
        else:  # FAILED nodes draw nothing
            drawn = 0.0
        if self.battery is not None and drawn > 0:
            self.battery.draw(drawn, time=now)
        self._state_since = now

    def set_power_state(self, state: PowerState, now: float) -> None:
        """Transition to ``state`` at simulation time ``now``.

        Energy for the outgoing state is settled first.  Transitions out of
        FAILED are rejected; failure is permanent in this model.
        """
        if self.power_state == PowerState.FAILED and state != PowerState.FAILED:
            raise ValueError(f"node {self.id} has failed and cannot be revived")
        self.settle_energy(now)
        self.power_state = state
        if self.power_listener is not None:
            self.power_listener(self.id, state)

    def wake_up(self, now: float) -> None:
        """Switch to AWAKE (no-op if already awake)."""
        if self.power_state != PowerState.AWAKE:
            self.set_power_state(PowerState.AWAKE, now)

    def go_to_sleep(self, now: float) -> None:
        """Switch to ASLEEP (no-op if already asleep)."""
        if self.power_state != PowerState.ASLEEP:
            self.set_power_state(PowerState.ASLEEP, now)

    def fail(self, now: float) -> None:
        """Permanently fail the node (fault-injection extension)."""
        if self.power_state != PowerState.FAILED:
            self.set_power_state(PowerState.FAILED, now)

    # ----------------------------------------------------------------- misc
    def distance_to(self, other: "SensorNode") -> float:
        """Euclidean distance to another node (metres)."""
        return self.position.distance_to(other.position)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SensorNode(id={self.id}, pos=({self.position.x:.1f}, {self.position.y:.1f}), "
            f"{self.power_state.value})"
        )

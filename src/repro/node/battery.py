"""Battery model: finite energy reservoir with depletion tracking.

The paper reports average energy consumption rather than lifetime, but a
battery abstraction is needed for the lifetime-oriented examples and the
failure-injection extension (a node whose battery empties behaves like a
failed node).  Capacity defaults to two AA cells, the Telos power source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Energy of two alkaline AA cells (~2 x 2500 mAh x 1.5 V), in joules.
DEFAULT_CAPACITY_J = 2 * 2.5 * 1.5 * 3600.0


@dataclass
class Battery:
    """Finite energy reservoir.

    Attributes
    ----------
    capacity_j:
        Initial stored energy in joules.
    consumed_j:
        Energy drawn so far.
    depleted_at:
        Simulation time at which the battery hit empty (``None`` while alive).
    """

    capacity_j: float = DEFAULT_CAPACITY_J
    consumed_j: float = 0.0
    depleted_at: Optional[float] = field(default=None)

    def __post_init__(self) -> None:
        if self.capacity_j <= 0:
            raise ValueError("capacity_j must be positive")
        if self.consumed_j < 0:
            raise ValueError("consumed_j must be non-negative")

    @property
    def remaining_j(self) -> float:
        """Energy left (never negative)."""
        return max(0.0, self.capacity_j - self.consumed_j)

    @property
    def fraction_remaining(self) -> float:
        """Remaining energy as a fraction of capacity in [0, 1]."""
        return self.remaining_j / self.capacity_j

    @property
    def depleted(self) -> bool:
        """True once all capacity has been consumed."""
        return self.consumed_j >= self.capacity_j

    def draw(self, energy_j: float, time: Optional[float] = None) -> bool:
        """Consume ``energy_j`` joules.

        Returns ``True`` while the battery still has charge after the draw.
        The first draw that empties the battery records ``depleted_at`` if a
        ``time`` is supplied.
        """
        if energy_j < 0:
            raise ValueError("energy_j must be non-negative")
        was_alive = not self.depleted
        self.consumed_j += energy_j
        if was_alive and self.depleted and time is not None:
            self.depleted_at = float(time)
        return not self.depleted

    def estimate_lifetime_s(self, average_power_w: float) -> float:
        """Remaining lifetime at a constant ``average_power_w`` draw."""
        if average_power_w <= 0:
            raise ValueError("average_power_w must be positive")
        return self.remaining_j / average_power_w

"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper.  The
``benchmark`` fixture (pytest-benchmark) times the regeneration; the helpers
here print the regenerated rows -- the same series the paper reports -- so
that running ``pytest benchmarks/ --benchmark-only -s`` doubles as the
reproduction report.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import pytest

from repro.metrics.summary import format_table


def print_block(title: str, rows: List[Dict], columns: Sequence[str]) -> None:
    """Print one regenerated table/figure under a banner."""
    print()
    print("=" * 78)
    print(title)
    print("-" * 78)
    print(format_table(rows, columns=list(columns)))
    print("=" * 78)


@pytest.fixture
def run_once(benchmark):
    """Run an expensive regeneration exactly once under pytest-benchmark.

    The sweeps behind the figures take seconds, so the default calibration
    (hundreds of rounds) would be prohibitive; a single round still records a
    wall-clock figure for the harness while keeping the suite fast.
    """

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run

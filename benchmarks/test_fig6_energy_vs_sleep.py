"""Figure 6: average energy consumption vs. maximum sleeping interval.

Paper's qualitative claims checked here:

* NS sensors consume the most energy (they never sleep) and their consumption
  does not depend on the sleep-interval sweep;
* PAS and SAS consumption decreases as the maximum sleeping interval grows;
* PAS consumes slightly more than SAS (the alert belt keeps extra nodes
  awake), but the difference stays small compared to the NS gap.
"""

import functools

import pytest

from benchmarks.conftest import print_block
from repro.analysis.statistics import is_monotonic
from repro.experiments.figures import figure6

MAX_SLEEP_GRID = (2.0, 5.0, 10.0, 15.0, 20.0)


@functools.lru_cache(maxsize=1)
def _sweep():
    """Run the Fig. 6 sweep once; reused by the assertion tests below."""
    return figure6(max_sleep_values=MAX_SLEEP_GRID, repetitions=2, base_seed=0)


@pytest.fixture
def fig6_result():
    return _sweep()


def test_fig6_regeneration(run_once):
    result = run_once(_sweep)
    print_block(
        "Figure 6 -- average energy per node (J) vs maximum sleeping interval (s)",
        result.rows(),
        columns=["max_sleep_s"] + result.sweep.schedulers(),
    )


def test_fig6_ns_consumes_most(fig6_result):
    ns = fig6_result.series("NS")
    pas = fig6_result.series("PAS")
    sas = fig6_result.series("SAS")
    assert all(n > p for n, p in zip(ns, pas))
    assert all(n > s for n, s in zip(ns, sas))


def test_fig6_energy_falls_with_longer_sleep(fig6_result):
    pas = fig6_result.series("PAS")
    sas = fig6_result.series("SAS")
    tolerance = 0.05 * max(pas)
    assert is_monotonic(pas, increasing=False, tolerance=tolerance)
    assert is_monotonic(sas, increasing=False, tolerance=tolerance)
    # End-to-end the saving must be real, not just noise.
    assert pas[-1] < pas[0]
    assert sas[-1] < sas[0]


def test_fig6_pas_close_to_but_not_below_half_of_sas(fig6_result):
    pas = fig6_result.series("PAS")
    sas = fig6_result.series("SAS")
    ns = fig6_result.series("NS")
    for p, s, n in zip(pas, sas, ns):
        # "PAS consumes slightly more energy than SAS ... the difference is trivial":
        # the PAS-SAS gap must stay well below the SAS-NS saving.
        assert abs(p - s) < 0.5 * (n - s)
        assert p >= 0.9 * s

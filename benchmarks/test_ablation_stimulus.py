"""Ablation A3: stimulus shape (circular vs. anisotropic vs. plume).

The PAS estimation formulas assume locally planar, roughly constant-velocity
spreading.  This ablation checks the scheduler still functions (detects every
reached node, keeps delay bounded) when that assumption is stressed by an
anisotropic front and by a drifting plume.
"""

import functools

import pytest

from benchmarks.conftest import print_block
from repro.experiments.ablations import ablation_stimulus_shape


@functools.lru_cache(maxsize=1)
def _sweep():
    return ablation_stimulus_shape(seed=0)


@pytest.fixture
def stimulus_rows():
    return _sweep()


def test_ablation_stimulus_regeneration(run_once):
    rows = run_once(_sweep)
    print_block(
        "Ablation A3 -- PAS across stimulus models",
        rows,
        columns=["variant", "delay_s", "energy_j", "tx_messages"],
    )


def test_all_stimulus_shapes_run(stimulus_rows):
    assert {r["variant"] for r in stimulus_rows} == {"circular", "anisotropic", "plume"}


def test_delay_stays_bounded_across_shapes(stimulus_rows):
    # Even with broken assumptions the delay must stay within the same order
    # of magnitude as the sleep interval (10 s max sleep here).
    assert all(r["delay_s"] <= 12.0 for r in stimulus_rows)


def test_energy_positive_across_shapes(stimulus_rows):
    assert all(r["energy_j"] > 0 for r in stimulus_rows)

"""Micro-benchmark: SerialBackend vs. ProcessPoolBackend on a small sweep grid.

Times the same :class:`~repro.exec.specs.RunSpec` batch through both backends
and prints the wall-clock comparison, doubling as a correctness check that
the parallel results are bit-identical to the serial ones.  Marked ``slow``
(it forks a worker pool), so a fast tier-1 pass can deselect it with
``-m "not slow"``.
"""

from __future__ import annotations

import time
from typing import List

import pytest

from benchmarks.conftest import print_block
from repro.core.config import PASConfig, SASConfig
from repro.exec.backends import ProcessPoolBackend, SerialBackend
from repro.exec.specs import RunSpec, SchedulerSpec
from repro.experiments.runner import default_scenario


def _grid() -> List[RunSpec]:
    """A small but non-trivial grid: 2 schedulers x 2 sleep caps x 2 seeds."""
    specs = []
    for name, config_cls in (("PAS", PASConfig), ("SAS", SASConfig)):
        for max_sleep in (5.0, 10.0):
            scheduler = SchedulerSpec(name, config_cls(max_sleep_interval=max_sleep))
            for seed in range(2):
                scenario = default_scenario(
                    num_nodes=12, area=30.0, duration=30.0, seed=seed,
                    label=f"parallel-bench-{name}-{max_sleep}",
                )
                specs.append(RunSpec(scenario, scheduler))
    return specs


@pytest.mark.slow
def test_parallel_sweep_backend_comparison():
    specs = _grid()

    start = time.perf_counter()
    serial_results = SerialBackend().run(specs)
    serial_s = time.perf_counter() - start

    backend = ProcessPoolBackend(jobs=2)
    start = time.perf_counter()
    parallel_results = backend.run(specs)
    parallel_s = time.perf_counter() - start

    assert parallel_results == serial_results, "parallel results must be bit-identical"

    rows = [
        {"backend": "SerialBackend", "jobs": 1, "specs": len(specs), "wall_s": serial_s},
        {"backend": "ProcessPoolBackend", "jobs": 2, "specs": len(specs), "wall_s": parallel_s},
        {
            "backend": "speedup",
            "jobs": "",
            "specs": "",
            "wall_s": serial_s / parallel_s if parallel_s > 0 else float("inf"),
        },
    ]
    print_block(
        "Parallel sweep micro-benchmark (serial vs. 2-process pool)",
        rows,
        ["backend", "jobs", "specs", "wall_s"],
    )
    # No speedup assertion: pool start-up costs dominate on tiny grids and CI
    # machines vary; the contract being benchmarked is identical results.

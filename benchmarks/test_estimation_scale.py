"""Estimation-path benchmarks: columnar PAS/SAS kernels at 5k-node scale.

PR 3 made the message *bus* fast, which left per-neighbour controller
estimation -- ``expected_arrival_time`` and friends walking one Python
``NeighborInfo`` at a time for every delivered RESPONSE -- as the dominant
term of a batched PAS run's profile.  This file pins the columnar
estimation layer (:mod:`repro.core.estimation`) on exactly that cost,
mirroring the message-path/end-to-end split of
``benchmarks/test_protocol_scale.py``:

* ``test_estimation_wave_speedup_5000_nodes`` populates every node's
  neighbour table over a preset-density deployment, then computes the
  full PAS + SAS estimator set for the whole fleet -- once through the
  scalar per-neighbour reference estimators and once through the
  vectorized kernels -- asserts the results are bit-identical, and
  requires the kernels to be >= 3x faster at 5,000 nodes.  The speedup
  trajectory over fleet sizes lands in ``BENCH_estimation.json``.
* ``test_columnar_end_to_end_matches_and_wins`` runs a full seeded PAS
  plume scenario on the batched engine under ``estimation="scalar"`` and
  ``estimation="columnar"``, re-asserting summary bit-identity at
  benchmark scale and a no-regression wall-clock floor.  (End to end the
  win is Amdahl-limited: RESPONSE fan-in batches are neighbourhood-sized
  (~15 receivers), and the per-receiver apply loop -- state machine,
  sleep policy, event scheduling -- stays Python; see ROADMAP open
  item 1.)

Both are marked ``slow``.  ``KERNEL_BENCH_TINY=1`` shrinks the fleets and
drops the hard wall-clock assertions so CI can smoke the file on noisy
shared runners.  The artifact is written to the current working directory
unless ``BENCH_ARTIFACT_DIR`` points elsewhere.
"""

import json
import math
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.arrival import expected_arrival_time, sas_arrival_time
from repro.core.estimation import EstimationColumns
from repro.core.neighbors import NeighborInfo, NeighborTable
from repro.core.pas import PASScheduler
from repro.core.states import ProtocolState
from repro.core.velocity import expected_velocity
from repro.geometry.deployment import DeploymentConfig, make_deployment
from repro.geometry.vec import Vec2
from repro.network.topology import Topology
from repro.world.builder import build_simulation
from repro.world.presets import large_plume
from repro.world.state import WorldState

#: Tiny-N smoke mode for CI (shared with the other benchmark files).
TINY = os.environ.get("KERNEL_BENCH_TINY") == "1"

#: Fleet-size trajectory recorded into the artifact; the last size carries
#: the hard speedup assertion.
SIZES = [200, 400] if TINY else [1000, 2500, 5000]

#: Paper-density jittered grid: ~0.012 nodes/m^2 at 20 m range => avg
#: degree ~15, matching the large_plume preset and protocol benchmarks.
_DENSITY = 0.012
_TX_RANGE = 20.0

NOW = 10.0


def _populated_world(num_nodes, seed=0):
    """A preset-density fleet with every neighbour table fully populated.

    Tables are *bound* to the columns, so the scalar dicts and the CSR
    arrays are filled through the same ``NeighborTable.update`` mirror the
    simulation uses -- both paths then estimate from identical knowledge.
    """
    side = float(np.sqrt(num_nodes / _DENSITY))
    config = DeploymentConfig(
        kind="jittered_grid", num_nodes=num_nodes, width=side, height=side, jitter=0.3
    )
    rng = np.random.default_rng(seed)
    positions = make_deployment(config, rng)
    topology = Topology(positions, _TX_RANGE)
    indptr, neighbour_ids, _ = topology.neighbour_table()
    world_state = WorldState(list(range(num_nodes)), positions)
    est = EstimationColumns(world_state, indptr, neighbour_ids)
    tables = [NeighborTable() for _ in range(num_nodes)]
    for row, table in enumerate(tables):
        table.bind_columns(est, row)
    states = [ProtocolState.COVERED, ProtocolState.ALERT, ProtocolState.SAFE]
    for row, table in enumerate(tables):
        for neighbour in neighbour_ids[indptr[row] : indptr[row + 1]]:
            neighbour = int(neighbour)
            x, y = positions[neighbour]
            state = states[int(rng.integers(3))]
            has_velocity = rng.random() < 0.7
            has_detection = state is ProtocolState.COVERED and rng.random() < 0.8
            table.update(
                NeighborInfo(
                    node_id=neighbour,
                    position=Vec2(float(x), float(y)),
                    state=state,
                    velocity=(
                        Vec2(float(rng.normal(2.0, 1.0)), float(rng.normal(0.0, 1.0)))
                        if has_velocity
                        else None
                    ),
                    predicted_arrival=(
                        float(NOW + rng.uniform(0.0, 30.0))
                        if rng.random() < 0.6
                        else math.inf
                    ),
                    detection_time=(
                        float(rng.uniform(0.0, NOW)) if has_detection else None
                    ),
                    report_time=float(rng.uniform(0.0, NOW)),
                )
            )
    return positions, est, tables


def _scalar_estimation_wave(positions, tables):
    """The per-neighbour reference estimators, once per node."""
    arrivals, sas, velocities = [], [], []
    for row, table in enumerate(tables):
        position = Vec2(float(positions[row][0]), float(positions[row][1]))
        informative = table.informative_neighbors(NOW)
        arrivals.append(expected_arrival_time(position, informative, NOW))
        velocities.append(expected_velocity(informative))
        sas.append(sas_arrival_time(position, table.covered_neighbors(NOW), NOW))
    return arrivals, sas, velocities


def _columnar_estimation_wave(est, num_nodes):
    """The vectorized kernels, whole fleet in one batch."""
    rows = np.arange(num_nodes, dtype=np.intp)
    pad = est.padded(rows)
    informative = est.informative_mask(pad, NOW)
    covered = est.covered_mask(pad, NOW)
    arrivals = est.expected_arrival_time_many(rows, pad, informative, NOW)
    vx, vy, vn = est.expected_velocity_many(pad, informative)
    sas = est.sas_arrival_time_many(rows, pad, covered, NOW)
    return arrivals, sas, (vx, vy, vn)


def _best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _artifact_path():
    return Path(os.environ.get("BENCH_ARTIFACT_DIR", ".")) / "BENCH_estimation.json"


@pytest.mark.slow
def test_estimation_wave_speedup_5000_nodes():
    """Columnar kernels must beat the scalar estimators by >= 3x at 5k."""
    trajectory = []
    for num_nodes in SIZES:
        positions, est, tables = _populated_world(num_nodes)
        repeats = 3
        scalar_s, scalar_out = _best_of(
            lambda: _scalar_estimation_wave(positions, tables), repeats
        )
        columnar_s, columnar_out = _best_of(
            lambda: _columnar_estimation_wave(est, num_nodes), repeats
        )

        # Bit-identity: every estimate must match the scalar reference
        # exactly (inf included); velocity means match where defined.
        arrivals, sas, velocities = scalar_out
        k_arrivals, k_sas, (vx, vy, vn) = columnar_out
        for row in range(num_nodes):
            assert k_arrivals[row] == arrivals[row]
            assert k_sas[row] == sas[row]
            if velocities[row] is None:
                assert vn[row] == 0
            else:
                assert vx[row] == velocities[row].x
                assert vy[row] == velocities[row].y

        speedup = scalar_s / columnar_s
        trajectory.append(
            {
                "nodes": num_nodes,
                "table_entries": int(est.valid.sum()),
                "scalar_s": scalar_s,
                "columnar_s": columnar_s,
                "speedup": speedup,
            }
        )
        print(
            f"\n{num_nodes}-node estimation wave: scalar {scalar_s * 1e3:.1f} ms, "
            f"columnar {columnar_s * 1e3:.1f} ms, speedup {speedup:.1f}x"
        )

    artifact = {
        "benchmark": "columnar_estimation_wave",
        "tiny": TINY,
        "tx_range_m": _TX_RANGE,
        "density_nodes_per_m2": _DENSITY,
        "trajectory": trajectory,
    }
    _artifact_path().write_text(json.dumps(artifact, indent=2))

    if not TINY:
        final = trajectory[-1]
        assert final["nodes"] == 5000
        assert final["speedup"] >= 3.0, (
            f"columnar estimation only {final['speedup']:.1f}x faster at 5k nodes"
        )


@pytest.mark.slow
def test_columnar_end_to_end_matches_and_wins():
    """A full PAS run at benchmark scale: identical summary, no regression.

    1,000 nodes over a 6 s plume window keeps the scalar-estimation
    reference leg in the tens of seconds; the bit-identity assertion is
    the point here -- the hard speedup number lives in the wave benchmark
    above, and the end-to-end ratio it reports feeds ROADMAP open item 1
    (the residual per-receiver apply loop).
    """
    scenario = large_plume(seed=0, duration=2.0 if TINY else 6.0)
    num_nodes = 200 if TINY else 1000
    side = float(np.sqrt(num_nodes / _DENSITY))
    scenario = scenario.with_overrides(
        deployment=DeploymentConfig(
            kind="jittered_grid",
            num_nodes=num_nodes,
            width=side,
            height=side,
            jitter=0.3,
        )
    )
    timings = {}
    summaries = {}
    for estimation in ("scalar", "columnar"):
        simulation = build_simulation(
            scenario, PASScheduler(), engine="batched", estimation=estimation
        )
        start = time.perf_counter()
        summaries[estimation] = simulation.run()
        timings[estimation] = time.perf_counter() - start
    assert summaries["scalar"].to_json() == summaries["columnar"].to_json()
    ratio = timings["scalar"] / timings["columnar"]
    print(
        f"\n{num_nodes}-node PAS plume run: scalar estimation "
        f"{timings['scalar']:.2f} s, columnar {timings['columnar']:.2f} s "
        f"({ratio:.2f}x end to end)"
    )
    if not TINY:
        # Soft floor with noise headroom: the columnar path must never make
        # a protocol-heavy run meaningfully slower.
        assert ratio > 0.9, "columnar estimation regressed end-to-end wall clock"

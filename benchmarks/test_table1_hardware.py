"""Table 1: Telos hardware characteristics used by the simulation.

Regenerates the table from the power model the simulator actually uses and
checks it matches the paper's numbers exactly (this is the one artefact that
should reproduce verbatim, since it is an input, not a result).
"""

import pytest

from benchmarks.conftest import print_block
from repro.experiments.table1 import PAPER_TABLE1, table1_hardware


def test_table1_hardware(run_once):
    rows = run_once(table1_hardware)
    print_block(
        "Table 1 -- Telos hardware characteristics (paper values in parentheses)",
        [
            {
                "quantity": r["quantity"],
                "simulated": r["value"],
                "paper": PAPER_TABLE1[r["quantity"]],
            }
            for r in rows
        ],
        columns=["quantity", "simulated", "paper"],
    )
    for row in rows:
        assert row["value"] == pytest.approx(PAPER_TABLE1[row["quantity"]]), row["quantity"]

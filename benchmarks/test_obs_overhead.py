"""Telemetry overhead benchmarks: disabled must cost (essentially) nothing.

The observability layer's contract has two halves:

* **Structural zero-cost** -- with no active telemetry, the hot paths never
  call into the telemetry registry at all.
  ``test_disabled_run_makes_zero_telemetry_calls`` proves it by replacing
  every :class:`~repro.obs.telemetry.Telemetry` recording method with a
  tripwire and running a full scenario: any stray instrumentation call
  raises.
* **Measured near-zero cost** -- ``test_disabled_overhead_under_5_percent``
  times the same seeded batched-engine run built before and after the
  telemetry layer existed, i.e. disabled vs. enabled, and requires the
  disabled run to be at most 5% slower than the *enabled* run minus its
  known instrumentation work -- operationally: ``min over repeats`` of the
  disabled time must be within 5% (plus a small absolute epsilon for timer
  noise) of itself across repeats and strictly below the enabled time's
  budgeted envelope.  The measured ratio lands in ``BENCH_obs.json``.

Both are marked ``slow``; ``KERNEL_BENCH_TINY=1`` shrinks the fleet so CI
can smoke the file on noisy shared runners (the <5% assertion is kept --
it is relative, not absolute -- but repeats are reduced).
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.pas import PASScheduler
from repro.obs import telemetry as obs
from repro.world.builder import run_scenario
from repro.world.presets import large_plume

TINY = os.environ.get("KERNEL_BENCH_TINY") == "1"

NODES = 300 if TINY else 2000
DURATION = 15.0 if TINY else 30.0
REPEATS = 2 if TINY else 3

#: Absolute slack (seconds) absorbing scheduler jitter on short tiny runs.
EPSILON_S = 0.05


def _scenario():
    import dataclasses
    import math

    preset = large_plume(seed=9, duration=DURATION)
    deployment = preset.deployment
    scale = math.sqrt(NODES / deployment.num_nodes)
    return preset.with_overrides(
        deployment=dataclasses.replace(
            deployment,
            num_nodes=NODES,
            width=deployment.width * scale,
            height=deployment.height * scale,
        )
    )


def _run(telemetry=None):
    scenario = _scenario()
    scheduler = PASScheduler()
    if telemetry is None:
        return run_scenario(
            scenario, scheduler, engine="batched", estimation="columnar"
        )
    with obs.session(telemetry):
        return run_scenario(
            scenario, scheduler, engine="batched", estimation="columnar"
        )


def _artifact_path() -> Path:
    return Path(os.environ.get("BENCH_ARTIFACT_DIR", ".")) / "BENCH_obs.json"


@pytest.mark.slow
def test_disabled_run_makes_zero_telemetry_calls(monkeypatch):
    """With telemetry disabled, the hot paths never touch the registry."""

    def _tripwire(name):
        def _boom(self, *args, **kwargs):
            raise AssertionError(
                f"Telemetry.{name} called while telemetry was disabled"
            )

        return _boom

    for method in ("count", "observe", "phase", "trace"):
        monkeypatch.setattr(obs.Telemetry, method, _tripwire(method))
    assert obs.active() is None
    summary = _run()  # would raise on any stray instrumentation call
    assert summary.average_energy_j > 0.0


@pytest.mark.slow
def test_disabled_overhead_under_5_percent():
    """Seeded run: telemetry-disabled wall time <= 1.05x telemetry-enabled.

    The enabled run does strictly more work (every span is two
    ``perf_counter`` calls plus dict updates), so it upper-bounds what the
    disabled path may cost: if the disabled run cannot beat 105% of the
    enabled one, the "zero overhead when disabled" design is broken.
    Min-of-repeats on both sides squeezes out scheduler noise.
    """
    _run()  # warm imports, allocator and caches out of the measurement

    disabled_s = []
    enabled_s = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        baseline = _run()
        disabled_s.append(time.perf_counter() - start)

        telemetry = obs.Telemetry()
        start = time.perf_counter()
        instrumented = _run(telemetry)
        enabled_s.append(time.perf_counter() - start)
        # The timing comparison is only meaningful over identical work.
        assert instrumented.to_json() == baseline.to_json()

    best_disabled = min(disabled_s)
    best_enabled = min(enabled_s)
    ratio = best_disabled / best_enabled
    artifact = {
        "benchmark": "obs_disabled_overhead",
        "tiny": TINY,
        "nodes": NODES,
        "duration_s": DURATION,
        "repeats": REPEATS,
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "best_disabled_s": best_disabled,
        "best_enabled_s": best_enabled,
        "disabled_over_enabled": ratio,
    }
    _artifact_path().write_text(json.dumps(artifact, indent=2))
    print(
        f"\nobs overhead: disabled {best_disabled:.3f}s vs enabled "
        f"{best_enabled:.3f}s (ratio {ratio:.3f})"
    )
    assert best_disabled <= 1.05 * best_enabled + EPSILON_S, (
        f"telemetry-disabled run ({best_disabled:.3f}s) should not be "
        f"slower than 105% of the instrumented run ({best_enabled:.3f}s)"
    )

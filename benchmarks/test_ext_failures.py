"""Extension E1: PAS under node failures (paper future work).

Sweeps the node-failure rate and checks the expected degradation shape:
failed nodes stop detecting, so the detected count can only fall as the
failure rate rises, while the surviving nodes' delay stays bounded.
"""

import functools

import pytest

from benchmarks.conftest import print_block
from repro.experiments.ablations import extension_node_failures

FAILURE_RATES = (0.0, 30.0, 120.0, 360.0)


@functools.lru_cache(maxsize=1)
def _sweep():
    return extension_node_failures(failure_rates=FAILURE_RATES, seed=1)


@pytest.fixture
def failure_rows():
    return _sweep()


def test_extension_failures_regeneration(run_once):
    rows = run_once(_sweep)
    print_block(
        "Extension E1 -- PAS under node failures (failures per node-hour)",
        rows,
        columns=["variant", "x", "delay_s", "energy_j"],
    )


def test_failure_free_baseline_present(failure_rows):
    assert failure_rows[0]["x"] == 0.0


def test_delay_stays_bounded_under_failures(failure_rows):
    assert all(r["delay_s"] <= 12.0 for r in failure_rows)


def test_energy_does_not_grow_with_failures(failure_rows):
    # Dead nodes draw nothing, so the fleet-average energy cannot rise much.
    baseline = failure_rows[0]["energy_j"]
    assert all(r["energy_j"] <= baseline * 1.05 for r in failure_rows)

"""Figure 4: detection delay vs. maximum sleeping interval (NS / PAS / SAS).

Paper's qualitative claims checked here:

* NS sensors have zero delay at every setting (they never sleep);
* PAS and SAS delay grows with the maximum sleeping interval;
* PAS delay stays below SAS delay.
"""

import functools

import pytest

from benchmarks.conftest import print_block
from repro.analysis.statistics import is_monotonic
from repro.experiments.figures import figure4

MAX_SLEEP_GRID = (2.0, 5.0, 10.0, 15.0, 20.0)


@functools.lru_cache(maxsize=1)
def _sweep():
    """Run the Fig. 4 sweep once; reused by the assertion tests below."""
    return figure4(max_sleep_values=MAX_SLEEP_GRID, repetitions=3, base_seed=0)


@pytest.fixture
def fig4_result():
    return _sweep()


def test_fig4_regeneration(run_once):
    result = run_once(_sweep)
    print_block(
        "Figure 4 -- average detection delay (s) vs maximum sleeping interval (s)",
        result.rows(),
        columns=["max_sleep_s"] + result.sweep.schedulers(),
    )


def test_fig4_ns_zero_delay(fig4_result):
    assert all(v == pytest.approx(0.0, abs=1e-9) for v in fig4_result.series("NS"))


def test_fig4_delay_grows_with_sleep_interval(fig4_result):
    # Sleeping longer can only hurt the worst-case wake-up; allow a small
    # noise tolerance on the monotonicity check.
    assert is_monotonic(fig4_result.series("PAS"), increasing=True, tolerance=0.5)
    assert is_monotonic(fig4_result.series("SAS"), increasing=True, tolerance=0.5)


def test_fig4_pas_beats_sas(fig4_result):
    pas = fig4_result.series("PAS")
    sas = fig4_result.series("SAS")
    # PAS must win overall and never lose by more than simulation noise at any
    # single sweep point (at very short sleep intervals both schemes approach
    # the same near-zero delay, and at very long ones both are dominated by
    # the wake-up lottery, so per-point ordering there is noise-dominated).
    assert all(p <= s + 0.35 for p, s in zip(pas, sas))
    assert sum(pas) < sum(sas)


def test_fig4_sleeping_schedulers_have_positive_delay(fig4_result):
    assert all(v > 0 for v in fig4_result.series("SAS"))
    assert all(v >= 0 for v in fig4_result.series("PAS"))

"""Micro-benchmarks of the simulation substrates themselves.

Not a paper figure -- these time the hot paths of the reproduction (event
dispatch, neighbour queries, a full scenario run) so performance regressions
in the kernel show up in the benchmark report alongside the figure
regenerations.
"""

import numpy as np
import pytest

from repro.core.config import PASConfig
from repro.core.pas import PASScheduler
from repro.experiments.runner import default_scenario
from repro.geometry.spatial_index import GridIndex
from repro.sim.engine import Simulator
from repro.world.builder import run_scenario


def test_event_dispatch_throughput(benchmark):
    def dispatch_10k():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule_at(float(i) * 1e-3, lambda: None)
        sim.run()
        return sim.events_processed

    processed = benchmark(dispatch_10k)
    assert processed == 10_000


def test_spatial_index_query_throughput(benchmark):
    rng = np.random.default_rng(0)
    points = rng.uniform(0, 100, size=(500, 2))
    index = GridIndex(points, cell_size=10.0)
    queries = rng.uniform(0, 100, size=(200, 2))

    def run_queries():
        return sum(len(index.query_radius(q, 10.0)) for q in queries)

    total = benchmark(run_queries)
    assert total > 0


def test_full_scenario_run_time(benchmark):
    scenario = default_scenario(num_nodes=30, area=50.0, seed=0)

    def run():
        return run_scenario(scenario, PASScheduler(PASConfig()))

    summary = benchmark.pedantic(run, rounds=3, iterations=1)
    assert summary.delay.num_detected == summary.delay.num_reached

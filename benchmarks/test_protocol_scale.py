"""Protocol-path benchmarks: the batched message bus at 5k-node scale.

PR 2 vectorised the ground-truth kernel, which left the scalar protocol
layer -- ``BroadcastMedium.broadcast`` walking neighbours one Python
iteration at a time plus one heap event per delivery -- as the dominant cost
of PAS/SAS runs at large fleet sizes.  These benchmarks pin the batched
engine's advantage on exactly that message path:

* ``test_message_path_speedup_5000_nodes`` drives an identical REQUEST/
  RESPONSE-sized broadcast wave (every node transmits once to its
  neighbourhood) through the scalar ``BroadcastMedium`` and the columnar
  ``BatchMedium`` (+ ``CalendarQueue``) over the same deployments, asserts
  delivery-count parity, and requires the batched path to be >= 5x faster
  at 5,000 nodes.  It records a speedup *trajectory* over fleet sizes in a
  ``BENCH_protocol.json`` artifact.
* ``test_batched_end_to_end_run_matches_and_wins`` runs a full PAS scenario
  under both engines, re-asserting summary bit-identity at benchmark scale
  and reporting the end-to-end wall-clock ratio.

Both are marked ``slow``.  ``KERNEL_BENCH_TINY=1`` (the same switch the
kernel benchmarks use) shrinks the fleets and drops the hard wall-clock
assertions so CI can smoke the files on noisy shared runners.  The artifact
is written next to the current working directory unless
``BENCH_ARTIFACT_DIR`` points elsewhere.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.pas import PASScheduler
from repro.engine import BatchMedium, CalendarQueue
from repro.geometry.deployment import DeploymentConfig, make_deployment
from repro.geometry.vec import Vec2
from repro.network.medium import BroadcastMedium
from repro.network.messages import Response
from repro.network.topology import Topology
from repro.node.sensor import SensorNode
from repro.sim.engine import Simulator
from repro.world.builder import build_simulation
from repro.world.presets import large_plume
from repro.world.state import WorldState

#: Tiny-N smoke mode for CI (shared with benchmarks/test_large_scale.py).
TINY = os.environ.get("KERNEL_BENCH_TINY") == "1"

#: Fleet-size trajectory recorded into the artifact; the last size carries
#: the hard speedup assertion.
SIZES = [200, 400] if TINY else [1000, 2500, 5000]

#: Paper-density jittered grid: ~0.012 nodes/m^2, 20 m range => avg degree ~15,
#: matching the large_grid / large_plume presets.
_DENSITY = 0.012
_TX_RANGE = 20.0


def _build_world(num_nodes, batched, seed=0):
    """One medium (scalar or batched) over a preset-density deployment."""
    side = float(np.sqrt(num_nodes / _DENSITY))
    config = DeploymentConfig(
        kind="jittered_grid", num_nodes=num_nodes, width=side, height=side, jitter=0.3
    )
    positions = make_deployment(config, np.random.default_rng(seed))
    nodes = {i: SensorNode(i, Vec2(float(x), float(y))) for i, (x, y) in enumerate(positions)}
    topology = Topology(positions, _TX_RANGE)
    delivered = [0]
    if batched:
        sim = Simulator(queue=CalendarQueue(num_buckets=2 * num_nodes))
        medium = BatchMedium(sim, topology, nodes)
        world_state = WorldState(list(nodes), positions)
        for node in nodes.values():
            node.power_listener = world_state.set_power
            world_state.sync_from_node(node)
        medium.bind_world_state(world_state)
        medium.register_batch_handler(
            lambda ids, msg: delivered.__setitem__(0, delivered[0] + ids.size)
        )
    else:
        sim = Simulator()
        medium = BroadcastMedium(sim, topology, nodes)
        handler = lambda rid, msg: delivered.__setitem__(0, delivered[0] + 1)  # noqa: E731
        for node_id in nodes:
            medium.register_handler(node_id, handler)
    return sim, medium, delivered


def _broadcast_wave(sim, medium, num_nodes):
    """Every node broadcasts one RESPONSE-sized frame; flush all deliveries."""
    now = sim.now
    for sender in range(num_nodes):
        medium.broadcast(sender, Response(sender_id=sender, timestamp=now))
    sim.run(until=sim.now + 1.0)


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _artifact_path():
    return Path(os.environ.get("BENCH_ARTIFACT_DIR", ".")) / "BENCH_protocol.json"


@pytest.mark.slow
def test_message_path_speedup_5000_nodes():
    """Batched bus must beat the scalar message path by >= 5x at 5k nodes."""
    trajectory = []
    for num_nodes in SIZES:
        scalar_sim, scalar_medium, scalar_count = _build_world(num_nodes, batched=False)
        batched_sim, batched_medium, batched_count = _build_world(num_nodes, batched=True)

        repeats = 2 if num_nodes >= 5000 else 3
        scalar_s = _best_of(
            lambda: _broadcast_wave(scalar_sim, scalar_medium, num_nodes), repeats
        )
        batched_s = _best_of(
            lambda: _broadcast_wave(batched_sim, batched_medium, num_nodes), repeats
        )
        # Same topology, same all-awake fleet: both paths must have delivered
        # the identical frame count (per wave).
        assert scalar_count[0] == batched_count[0] > 0
        assert scalar_medium.stats.as_dict() == batched_medium.stats.as_dict()

        speedup = scalar_s / batched_s
        trajectory.append(
            {
                "nodes": num_nodes,
                "deliveries_per_wave": scalar_count[0] // repeats,
                "scalar_s": scalar_s,
                "batched_s": batched_s,
                "speedup": speedup,
            }
        )
        print(
            f"\n{num_nodes}-node broadcast wave: scalar {scalar_s * 1e3:.1f} ms, "
            f"batched {batched_s * 1e3:.1f} ms, speedup {speedup:.1f}x"
        )

    artifact = {
        "benchmark": "protocol_message_path",
        "tiny": TINY,
        "tx_range_m": _TX_RANGE,
        "density_nodes_per_m2": _DENSITY,
        "trajectory": trajectory,
    }
    _artifact_path().write_text(json.dumps(artifact, indent=2))

    if not TINY:
        final = trajectory[-1]
        assert final["nodes"] == 5000
        assert final["speedup"] >= 5.0, (
            f"batched message path only {final['speedup']:.1f}x faster at 5k nodes"
        )


@pytest.mark.slow
def test_batched_end_to_end_run_matches_and_wins():
    """A full PAS run at benchmark scale: identical summary, no regression.

    600 nodes over a 12 s plume window keeps the scalar reference run in the
    tens of seconds; the bit-identity assertion is the point here -- the
    hard speedup number lives in the message-path benchmark above.  (End to
    end the win is Amdahl-limited: once the bus is ~9x faster, PAS's
    per-receiver arrival-estimation math dominates the remaining profile.)
    """
    scenario = large_plume(seed=0, duration=12.0)
    scenario = scenario.with_overrides(
        deployment=DeploymentConfig(
            kind="jittered_grid",
            num_nodes=400 if TINY else 600,
            width=183.0 if TINY else 224.0,
            height=183.0 if TINY else 224.0,
            jitter=0.3,
        )
    )
    timings = {}
    summaries = {}
    for engine in ("scalar", "batched"):
        simulation = build_simulation(scenario, PASScheduler(), engine=engine)
        start = time.perf_counter()
        summaries[engine] = simulation.run()
        timings[engine] = time.perf_counter() - start
    assert summaries["scalar"].to_json() == summaries["batched"].to_json()
    ratio = timings["scalar"] / timings["batched"]
    print(
        f"\n{scenario.deployment.num_nodes}-node PAS plume run: "
        f"scalar {timings['scalar']:.2f} s, batched {timings['batched']:.2f} s "
        f"({ratio:.2f}x end to end)"
    )
    if not TINY:
        # Soft floor with noise headroom: the batched engine must never make
        # a protocol-heavy run meaningfully slower.
        assert ratio > 0.9, "batched engine regressed end-to-end wall clock"

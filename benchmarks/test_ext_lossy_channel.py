"""Extension E2: PAS over an imperfect (lossy) channel (paper future work).

Sweeps the per-frame loss probability.  Losing REQUEST/RESPONSE frames
degrades the arrival-time prediction, so detection delay should trend upward
with the loss rate, while local sensing keeps every reached node detecting
eventually.
"""

import functools

import pytest

from benchmarks.conftest import print_block
from repro.experiments.ablations import extension_lossy_channel

LOSS_GRID = (0.0, 0.2, 0.5, 0.8)


@functools.lru_cache(maxsize=1)
def _sweep():
    # Average over seeds: loss realisations are noisy.
    rows_by_x = {}
    for seed in range(3):
        for row in extension_lossy_channel(loss_probabilities=LOSS_GRID, seed=seed):
            rows_by_x.setdefault(row["x"], []).append(row)
    return [
        {
            "loss_probability": x,
            "delay_s": sum(r["delay_s"] for r in rows) / len(rows),
            "energy_j": sum(r["energy_j"] for r in rows) / len(rows),
            "tx_messages": sum(r["tx_messages"] for r in rows) / len(rows),
        }
        for x, rows in sorted(rows_by_x.items())
    ]


@pytest.fixture
def loss_rows():
    return _sweep()


def test_extension_lossy_regeneration(run_once):
    rows = run_once(_sweep)
    print_block(
        "Extension E2 -- PAS over a lossy channel (mean of 3 seeds)",
        rows,
        columns=["loss_probability", "delay_s", "energy_j", "tx_messages"],
    )


def test_loss_free_baseline_has_lowest_delay(loss_rows):
    baseline = loss_rows[0]["delay_s"]
    worst = loss_rows[-1]["delay_s"]
    assert worst >= baseline - 0.1


def test_delay_bounded_even_at_heavy_loss(loss_rows):
    assert all(r["delay_s"] <= 12.0 for r in loss_rows)


def test_all_loss_rates_produce_traffic(loss_rows):
    assert all(r["tx_messages"] > 0 for r in loss_rows)

"""Ablation A1: PAS velocity estimator vs. SAS-style local scalar estimator.

Both variants run with the *same* alert threshold so the only difference is
how stimulus knowledge is estimated and propagated.  The PAS estimator should
deliver a lower (or at worst equal) detection delay because alert nodes relay
estimates beyond the one-hop neighbourhood of the front.
"""

import functools

import pytest

from benchmarks.conftest import print_block
from repro.experiments.ablations import ablation_velocity_estimator


@functools.lru_cache(maxsize=1)
def _sweep():
    # Average over a few seeds so the comparison is not a single-deployment fluke.
    rows_by_variant = {}
    for seed in range(3):
        for row in ablation_velocity_estimator(seed=seed):
            rows_by_variant.setdefault(row["variant"], []).append(row)
    return [
        {
            "variant": variant,
            "delay_s": sum(r["delay_s"] for r in rows) / len(rows),
            "energy_j": sum(r["energy_j"] for r in rows) / len(rows),
            "tx_messages": sum(r["tx_messages"] for r in rows) / len(rows),
        }
        for variant, rows in rows_by_variant.items()
    ]


@pytest.fixture
def ablation_rows():
    return _sweep()


def test_ablation_velocity_regeneration(run_once):
    rows = run_once(_sweep)
    print_block(
        "Ablation A1 -- estimator choice at equal alert threshold (mean of 3 seeds)",
        rows,
        columns=["variant", "delay_s", "energy_j", "tx_messages"],
    )


def test_pas_estimator_not_worse_than_sas_estimator(ablation_rows):
    by_variant = {r["variant"]: r for r in ablation_rows}
    assert by_variant["PAS estimator"]["delay_s"] <= by_variant["SAS estimator"]["delay_s"] + 0.1


def test_pas_estimator_sends_more_messages(ablation_rows):
    # Estimate propagation is exactly what costs extra traffic.
    by_variant = {r["variant"]: r for r in ablation_rows}
    assert by_variant["PAS estimator"]["tx_messages"] >= by_variant["SAS estimator"]["tx_messages"]

"""Fleet throughput benchmark: fault-free vs. crash-ridden campaigns.

Runs the same :class:`~repro.exec.specs.RunSpec` grid through
:class:`~repro.exec.fleet.FleetBackend` three ways -- serial reference, a
healthy 4-worker fleet, and a 4-worker fleet where one worker SIGKILLs
itself mid-campaign -- and prints the wall-clock comparison plus the
supervisor's recovery stats.  Doubles as a correctness check that every
variant returns bit-identical summaries.  Marked ``slow`` (it spawns
worker fleets); ``KERNEL_BENCH_TINY=1`` shrinks the grid for CI smoke.
"""

from __future__ import annotations

import os
import time
from typing import List

import pytest

from benchmarks.conftest import print_block
from repro.core.config import PASConfig, SASConfig
from repro.exec.backends import SerialBackend
from repro.exec.faultinject import WorkerFaultPlan
from repro.exec.fleet import FleetBackend
from repro.exec.specs import RunSpec, SchedulerSpec
from repro.experiments.runner import default_scenario

TINY = bool(os.environ.get("KERNEL_BENCH_TINY"))


def _grid() -> List[RunSpec]:
    """2 schedulers x N seeds of a mid-sized scenario (32 cells full-size)."""
    seeds = 4 if TINY else 16
    nodes = 8 if TINY else 20
    duration = 15.0 if TINY else 40.0
    specs = []
    for name, config_cls in (("PAS", PASConfig), ("SAS", SASConfig)):
        scheduler = SchedulerSpec(name, config_cls())
        for seed in range(seeds):
            scenario = default_scenario(
                num_nodes=nodes, area=40.0, duration=duration, seed=seed,
                label=f"fleet-bench-{name}",
            )
            specs.append(RunSpec(scenario, scheduler))
    return specs


@pytest.mark.slow
@pytest.mark.fleet
def test_fleet_backend_throughput_and_recovery_overhead():
    specs = _grid()

    start = time.perf_counter()
    serial_results = SerialBackend().run(specs)
    serial_s = time.perf_counter() - start

    healthy = FleetBackend(workers=4, lease_timeout=5.0, heartbeat_interval=0.2)
    start = time.perf_counter()
    healthy_results = healthy.run(specs)
    healthy_s = time.perf_counter() - start
    assert healthy_results == serial_results, "fleet results must be bit-identical"
    assert healthy.stats.completed == len(specs)

    faulty = FleetBackend(
        workers=4,
        lease_timeout=1.0,
        heartbeat_interval=0.1,
        backoff_base=0.05,
        worker_faults={0: WorkerFaultPlan(kill_after_claims=2)},
    )
    start = time.perf_counter()
    faulty_results = faulty.run(specs)
    faulty_s = time.perf_counter() - start
    assert faulty_results == serial_results, "crash recovery must not change results"

    def row(label, wall_s, stats=None):
        return {
            "campaign": label,
            "cells": len(specs),
            "wall_s": wall_s,
            "cells_per_s": len(specs) / wall_s if wall_s > 0 else float("inf"),
            "reclaimed": stats.reclaimed_leases if stats else 0,
            "stragglers": stats.stragglers_inline if stats else 0,
        }

    print_block(
        "Fleet campaign benchmark (serial vs. healthy fleet vs. 1 worker SIGKILLed)",
        [
            row("SerialBackend", serial_s),
            row("fleet (4 workers)", healthy_s, healthy.stats),
            row("fleet (1 crash)", faulty_s, faulty.stats),
        ],
        ["campaign", "cells", "wall_s", "cells_per_s", "reclaimed", "stragglers"],
    )
    # No speedup assertion: worker start-up and lease polling dominate on
    # small grids and CI machines vary; the contracts being benchmarked are
    # bit-identical results and bounded crash-recovery overhead.

"""Figure 5: PAS detection delay vs. alert-time threshold.

Paper's qualitative claim: increasing the alert threshold (10 s -> 30 s)
decreases the average detection delay (1.73 s -> 1.5 s in the paper's setup),
demonstrating the adaptability knob that NS and SAS lack.
"""

import functools

import pytest

from benchmarks.conftest import print_block
from repro.experiments.figures import figure5

ALERT_GRID = (5.0, 10.0, 15.0, 20.0, 25.0, 30.0)


@functools.lru_cache(maxsize=1)
def _sweep():
    """Run the Fig. 5 sweep once; reused by the assertion tests below."""
    return figure5(alert_thresholds=ALERT_GRID, repetitions=3, base_seed=0)


@pytest.fixture
def fig5_result():
    return _sweep()


def test_fig5_regeneration(run_once):
    result = run_once(_sweep)
    print_block(
        "Figure 5 -- PAS average detection delay (s) vs alert-time threshold (s)",
        result.rows(),
        columns=["alert_threshold_s", "PAS"],
    )


def test_fig5_delay_decreases_with_threshold(fig5_result):
    series = fig5_result.series("PAS")
    # Overall trend: the largest threshold must beat the smallest clearly.
    assert series[-1] < series[0]
    # And the tail (>= 10 s, the paper's sweep range) should not regress badly.
    assert min(series) >= 0.0


def test_fig5_delays_in_plausible_range(fig5_result):
    # With a 10 s max sleep and ~1 m/s front the delays sit in the low seconds,
    # the same order of magnitude as the paper's 1.5-1.73 s.
    series = fig5_result.series("PAS")
    assert all(0.0 <= v <= 6.0 for v in series)

"""Ablation A4: deployment density, stimulus speed and radio range sensitivity.

Not a paper figure -- this probes how the PAS-vs-SAS gap depends on the fixed
choices of the paper's setup (30 nodes, 10 m range, ~1 m/s front).
"""

import functools

import pytest

from benchmarks.conftest import print_block
from repro.experiments.sensitivity import (
    density_sensitivity,
    range_sensitivity,
    speed_sensitivity,
)


@functools.lru_cache(maxsize=1)
def _density_rows():
    return density_sensitivity(node_counts=(15, 30, 60), seeds=(0, 1))


@functools.lru_cache(maxsize=1)
def _speed_rows():
    return speed_sensitivity(speeds=(0.5, 1.0, 2.0))


@functools.lru_cache(maxsize=1)
def _range_rows():
    return range_sensitivity(ranges=(5.0, 10.0, 20.0))


def test_density_sensitivity_regeneration(run_once):
    rows = run_once(_density_rows)
    print_block(
        "Ablation A4a -- density sensitivity (mean of 2 seeds)",
        rows,
        columns=["scheduler", "num_nodes", "delay_s", "energy_j", "detected", "reached"],
    )


def test_speed_and_range_regeneration(run_once):
    rows = run_once(lambda: _speed_rows() + _range_rows())
    print_block(
        "Ablation A4b -- stimulus speed sensitivity",
        _speed_rows(),
        columns=["scheduler", "speed_mps", "delay_s", "energy_j"],
    )
    print_block(
        "Ablation A4c -- transmission range sensitivity",
        _range_rows(),
        columns=["scheduler", "range_m", "delay_s", "energy_j"],
    )
    assert rows


def test_every_density_detects_all_reached_nodes():
    for row in _density_rows():
        assert row["detected"] == row["reached"]


def test_pas_advantage_present_at_paper_density():
    rows = [r for r in _density_rows() if r["num_nodes"] == 30]
    pas = next(r for r in rows if r["scheduler"] == "PAS")
    sas = next(r for r in rows if r["scheduler"] == "SAS")
    assert pas["delay_s"] <= sas["delay_s"] + 0.1


def test_pas_beats_sas_at_every_speed():
    by_speed = {}
    for row in _speed_rows():
        by_speed.setdefault(row["speed_mps"], {})[row["scheduler"]] = row["delay_s"]
    for speed, delays in by_speed.items():
        assert delays["PAS"] <= delays["SAS"] + 0.1, f"PAS lost at speed {speed}"


def test_slower_front_means_longer_sleep_and_higher_delay():
    # A slower front arrives later, after the safe-state sleep interval has
    # ramped further towards its cap, so the average delay grows as the speed
    # drops (for both adaptive schemes).
    for scheduler in ("PAS", "SAS"):
        series = sorted(
            (r["speed_mps"], r["delay_s"]) for r in _speed_rows() if r["scheduler"] == scheduler
        )
        delays = [d for _, d in series]
        assert delays[0] >= delays[-1] - 0.25

"""Large-scale kernel benchmarks: the columnar world state at 5k-10k nodes.

The paper evaluates 30 nodes; the roadmap pushes the reproduction to
10k-node scenarios, where the per-tick Python-object scans the kernel used
to do (coverage recheck, occupancy sampling) dominate every sweep cell.
These benchmarks pin the vectorised kernel's advantage:

* ``test_recheck_speedup_5000_nodes`` times the vectorised coverage-recheck
  tick against the retained scalar reference implementation on the *same*
  live 5,000-node plume simulation and asserts the >= 5x improvement the
  refactor promises (typically >10x here);
* ``test_occupancy_sampling_scales`` checks the bincount-based occupancy
  sampler against the object scan it replaced, on the same live simulation;
* ``test_large_grid_preset_runs`` exercises the ``large_grid`` 10k-node
  preset end to end for a short window, where the monotone-coverage fast
  path reduces every recheck tick to O(1).

All are marked ``slow`` like the other stress benchmarks.  Setting
``KERNEL_BENCH_TINY=1`` shrinks the fleets (~400 nodes) and relaxes the
timing thresholds: CI uses it as a smoke invocation that keeps these files
executing end to end without hard wall-clock assertions on noisy shared
runners.
"""

import os
import time

import pytest

from repro.core.baselines import NoSleepScheduler
from repro.core.config import SchedulerConfig
from repro.geometry.deployment import DeploymentConfig
from repro.world.builder import build_simulation
from repro.world.presets import get_preset, large_plume

#: Tiny-N smoke mode for CI: scaled-down fleets, sanity-level assertions.
TINY = os.environ.get("KERNEL_BENCH_TINY") == "1"


def _plume_scenario(seed):
    scenario = large_plume(seed=seed)
    if TINY:
        scenario = scenario.with_overrides(
            deployment=DeploymentConfig(
                kind="jittered_grid", num_nodes=400, width=183.0, height=183.0, jitter=0.3
            )
        )
    return scenario


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.mark.slow
def test_recheck_speedup_5000_nodes():
    """Vectorised recheck must beat the scalar object scan by >= 5x at 5k nodes."""
    scenario = _plume_scenario(seed=0)
    sim = build_simulation(scenario, NoSleepScheduler(SchedulerConfig()))
    sim.start()
    # Let the plume engulf a meaningful fraction of the fleet first, so both
    # recheck variants do real coverage work (no departures fire while the
    # plume is still growing, keeping repeated timing calls side-effect free).
    sim.sim.run(until=30.0)
    covered = sim._covered_awake_rows().size
    min_covered = 20 if TINY else 200
    assert covered > min_covered, f"expected a well-covered fleet, got {covered} nodes"

    vectorised = _best_of(sim._recheck_covered_nodes, repeats=15)
    scalar = _best_of(sim._recheck_covered_nodes_scalar, repeats=5)
    speedup = scalar / vectorised

    print(
        f"\n{len(sim.nodes)}-node plume recheck tick: scalar {scalar * 1e3:.3f} ms, "
        f"vectorised {vectorised * 1e3:.3f} ms, speedup {speedup:.1f}x "
        f"({covered} covered nodes)"
    )
    if not TINY:
        assert speedup >= 5.0, (
            f"vectorised recheck only {speedup:.1f}x faster than the scalar path"
        )


@pytest.mark.slow
def test_occupancy_sampling_scales():
    """Occupancy sampling is a few bincount/mask reductions, not an object scan."""
    scenario = _plume_scenario(seed=1)
    sim = build_simulation(
        scenario, NoSleepScheduler(SchedulerConfig()), occupancy_sample_interval=5.0
    )
    sim.start()
    sim.sim.run(until=20.0)

    def scan():
        counts = {}
        awake = asleep = 0
        for node_id, controller in sim.controllers.items():
            node = sim.nodes[node_id]
            counts[controller.state_name] = counts.get(controller.state_name, 0) + 1
            if node.is_awake:
                awake += 1
            elif not node.is_failed:
                asleep += 1
        return counts, awake, asleep

    vectorised = _best_of(sim._sample_occupancy, repeats=15)
    scalar = _best_of(scan, repeats=5)
    counts, awake, asleep = scan()
    sample = sim.metrics.occupancy[-1]
    assert sample.counts == counts and sample.awake == awake and sample.asleep == asleep
    print(
        f"\n{len(sim.nodes)}-node occupancy sample: scalar {scalar * 1e3:.3f} ms, "
        f"vectorised {vectorised * 1e3:.3f} ms ({scalar / vectorised:.1f}x)"
    )
    if not TINY:
        assert vectorised < scalar, "vectorised occupancy sampling should win outright"


@pytest.mark.slow
def test_large_grid_preset_runs():
    """The 10k-node large_grid preset builds and simulates a short window."""
    scenario = get_preset("large_grid", seed=0, duration=10.0)
    if TINY:
        scenario = scenario.with_overrides(
            deployment=DeploymentConfig(
                kind="jittered_grid", num_nodes=400, width=183.0, height=183.0, jitter=0.3
            )
        )
    expected_nodes = 400 if TINY else 10_000
    t0 = time.perf_counter()
    sim = build_simulation(scenario, NoSleepScheduler(SchedulerConfig()))
    build_s = time.perf_counter() - t0
    assert len(sim.nodes) == expected_nodes
    assert sim.world_state.num_nodes == expected_nodes
    # Circular front + perfect sensing: every recheck tick short-circuits.
    assert sim._recheck_skippable and sim.stimulus.monotone_coverage

    t0 = time.perf_counter()
    summary = sim.run()
    run_s = time.perf_counter() - t0
    assert summary.delay.num_detected == summary.delay.num_reached
    assert summary.delay.num_reached > 100
    print(
        f"\nlarge_grid {len(sim.nodes)} nodes: topology+world build {build_s:.2f} s, "
        f"{summary.extra['events_processed']} events in {run_s:.2f} s simulated 10 s, "
        f"avg degree {summary.extra['average_degree']:.1f}"
    )

"""Figure 7: PAS energy consumption vs. alert-time threshold.

Paper's qualitative claim: the energy consumption "varies greatly when
increasing the threshold of alert time" -- a larger alert belt keeps more
sensors awake ahead of the front, so energy grows with the threshold.
"""

import functools

import pytest

from benchmarks.conftest import print_block
from repro.experiments.figures import figure7

ALERT_GRID = (5.0, 10.0, 15.0, 20.0, 25.0, 30.0)


@functools.lru_cache(maxsize=1)
def _sweep():
    """Run the Fig. 7 sweep once; reused by the assertion tests below."""
    return figure7(alert_thresholds=ALERT_GRID, repetitions=3, base_seed=0)


@pytest.fixture
def fig7_result():
    return _sweep()


def test_fig7_regeneration(run_once):
    result = run_once(_sweep)
    print_block(
        "Figure 7 -- PAS average energy per node (J) vs alert-time threshold (s)",
        result.rows(),
        columns=["alert_threshold_s", "PAS"],
    )


def test_fig7_energy_grows_with_threshold(fig7_result):
    series = fig7_result.series("PAS")
    assert series[-1] > series[0]


def test_fig7_energy_positive_and_sensitive(fig7_result):
    series = fig7_result.series("PAS")
    assert all(v > 0 for v in series)
    # The alert threshold must visibly move the energy figure.  The relative
    # spread is smaller than the paper's "varies greatly" phrasing suggests
    # because in our scenario every covered node stays awake until the end of
    # the run, which adds a large threshold-independent energy baseline (see
    # EXPERIMENTS.md); the direction and a measurable spread are what we check.
    assert (max(series) - min(series)) / max(series) > 0.003

"""Ablation A2: growth law of the safe-state sleep interval.

The paper prescribes a linearly increasing interval; this ablation compares
it against exponential back-off and a fixed maximum interval.  The fixed
policy sleeps at the maximum immediately, so it must use the least energy and
suffer the largest delay; the linear policy (paper) sits in between.
"""

import functools

import pytest

from benchmarks.conftest import print_block
from repro.experiments.ablations import ablation_sleep_policy


@functools.lru_cache(maxsize=1)
def _sweep():
    rows_by_variant = {}
    for seed in range(3):
        for row in ablation_sleep_policy(seed=seed):
            rows_by_variant.setdefault(row["variant"], []).append(row)
    return [
        {
            "policy": variant,
            "delay_s": sum(r["delay_s"] for r in rows) / len(rows),
            "energy_j": sum(r["energy_j"] for r in rows) / len(rows),
        }
        for variant, rows in rows_by_variant.items()
    ]


@pytest.fixture
def policy_rows():
    return _sweep()


def test_ablation_sleep_policy_regeneration(run_once):
    rows = run_once(_sweep)
    print_block(
        "Ablation A2 -- safe-state sleep growth policy (mean of 3 seeds)",
        rows,
        columns=["policy", "delay_s", "energy_j"],
    )


def test_all_policies_produce_valid_metrics(policy_rows):
    assert {r["policy"] for r in policy_rows} == {"linear", "exponential", "fixed"}
    assert all(r["delay_s"] >= 0 and r["energy_j"] > 0 for r in policy_rows)


def test_fixed_policy_cheapest_energy(policy_rows):
    by = {r["policy"]: r for r in policy_rows}
    assert by["fixed"]["energy_j"] <= by["linear"]["energy_j"] + 1e-6


def test_linear_policy_delay_not_worse_than_fixed(policy_rows):
    # Ramping up from short sleeps means nodes check more often early on.
    by = {r["policy"]: r for r in policy_rows}
    assert by["linear"]["delay_s"] <= by["fixed"]["delay_s"] + 0.25
